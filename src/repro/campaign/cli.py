"""``python -m repro.campaign`` -- run, resume, report and compare sweeps.

Subcommands
-----------
run      Execute a campaign spec (JSON) across a worker pool, streaming
         records to ``results.jsonl`` as they complete, and write the
         aggregate reports to the output directory.  ``--batch-size``
         groups runs per worker task (default: auto-tuned);
         ``--baseline`` additionally gates on a previous results file
         and exits non-zero on regression.
resume   Finish an interrupted campaign: skip the run indices already
         checkpointed in the output directory's ``results.jsonl``
         (discarding a torn final line from a crash mid-write), execute
         the rest, and finalize output byte-identical to an
         uninterrupted ``run``.
merge    Fuse ``campaign run --shard i/N`` checkpoint directories into
         one artifact byte-identical to a single-host run.  Refuses
         fingerprint mismatches; quarantines conflicting duplicate
         records to ``merge-conflicts.jsonl``; ``--allow-partial``
         turns missing shards into a resumable checkpoint plus a
         ``merge-gaps.json`` manifest instead of an error.
report   Re-render the aggregate table from a results file/directory.
         Works on an in-flight or interrupted campaign: partial results
         aggregate normally and a torn tail is skipped with a warning.
         ``--follow`` tails a live campaign incrementally (byte-offset
         resume, no full-file re-reads) until all expected runs land,
         then prints the final aggregate -- byte-identical to a
         post-hoc report.
trends   Render cross-campaign history (``BENCH_*.json`` scorecards +
         past ``report.json`` aggregates) as a sparkline dashboard;
         ``--html FILE`` additionally writes a static HTML export.
compare  Diff two results files; exit 1 when regressions are found.

Exit codes: 0 ok; 1 regression detected; 2 bad input; 3 runs failed;
128+signum when a run/resume was interrupted by SIGINT/SIGTERM (the
checkpoint is flushed first, so ``resume`` finishes the campaign).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.campaign.aggregate import (
    SUMMARY_MODES,
    aggregate,
    load_results,
    read_jsonl_partial,
    report_text,
)
from repro.campaign.baseline import compare, comparison_text
from repro.campaign.merge import discover_shard_dirs, merge_shards
from repro.campaign.runner import (
    EXECUTOR_REGISTRY,
    CampaignInterrupted,
    CampaignRunner,
)
from repro.campaign.shard import parse_shard
from repro.campaign.spec import CampaignSpec


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1, rejected with a one-line message."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _shard_arg(text: str) -> tuple[int, int]:
    """argparse type for ``--shard i/N``; exit 2 on malformed input."""
    try:
        return parse_shard(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _report_and_gate(records: list[dict], args) -> int:
    """Shared run/resume/merge epilogue: print the aggregate, apply the gate."""
    if getattr(args, "shard", None) is not None:
        # One shard's slice aggregates to a misleading table, and a
        # baseline gate over it would flag the missing shards as matrix
        # drift; reporting happens after `campaign merge`.
        failed = sum(1 for r in records if r.get("status") != "ok")
        print(f"shard {args.shard[0]}/{args.shard[1]}: {len(records)} runs "
              f"checkpointed ({failed} failed); aggregate and gate after "
              "'campaign merge'")
        return 3 if failed else 0
    report = aggregate(records)
    print()
    print(report_text(report))

    exit_code = 0
    if report["failed"]:
        exit_code = 3
    if args.baseline:
        result = compare(
            load_results(args.baseline), records,
            pdr_tol=args.pdr_tol, latency_tol=args.latency_tol,
        )
        print()
        print(comparison_text(result))
        # failed runs (exit 3) outrank a metrics regression (exit 1):
        # a run that no longer executes is the stronger signal
        if result["regressions"] and exit_code == 0:
            exit_code = 1
    return exit_code


def _make_runner(args) -> CampaignRunner:
    spec = CampaignSpec.from_file(args.spec)
    if args.shard is not None:
        spec.shard_index, spec.shards = args.shard
    return CampaignRunner(
        spec,
        workers=args.workers,
        batch_size=args.batch_size,
        out_dir=args.out or f"campaigns/{spec.name}",
        echo=None if args.quiet else print,
        progress=args.progress,
        telemetry=args.telemetry,
        executor=args.executor,
    )


def _cmd_run(args) -> int:
    return _report_and_gate(_make_runner(args).run(), args)


def _cmd_resume(args) -> int:
    return _report_and_gate(_make_runner(args).resume(), args)


def _cmd_merge(args) -> int:
    spec = CampaignSpec.from_file(args.spec)
    out_dir = args.out or f"campaigns/{spec.name}"
    shard_dirs = args.shards or discover_shard_dirs(out_dir)
    if not shard_dirs:
        print(f"error: no shard-*-of-* directories under {out_dir} "
              "(pass them explicitly with --shards)", file=sys.stderr)
        return 2
    echo = None if args.quiet else print
    summary = merge_shards(
        spec, shard_dirs, out_dir,
        allow_partial=args.allow_partial,
        echo=echo, telemetry=args.telemetry,
    )
    if not summary["complete"]:
        # partial merge: usable checkpoint, but not the final artifact
        return 3
    return _report_and_gate(load_results(out_dir), args)


def _resolve_results(target) -> tuple[str, str | None]:
    """``(results_path, spec_path or None)`` for a file or campaign dir."""
    if os.path.isdir(target):
        spec_path = os.path.join(target, "spec.json")
        return (os.path.join(target, "results.jsonl"),
                spec_path if os.path.exists(spec_path) else None)
    sibling = os.path.join(os.path.dirname(target) or ".", "spec.json")
    return os.fspath(target), sibling if os.path.exists(sibling) else None


def _cmd_report(args) -> int:
    results_path, spec_path = _resolve_results(args.results)
    mode = args.summary_mode
    if mode is None:
        mode = "exact"
        if spec_path is not None:
            mode = CampaignSpec.from_file(spec_path).summary_mode

    if args.follow:
        from repro.obs.follow import follow_report

        total = None
        if spec_path is not None:
            total = len(CampaignSpec.from_file(spec_path).expand())

        def on_update(aggregator, _fresh):
            seen = aggregator.runs_seen
            suffix = f"/{total}" if total is not None else ""
            print(f"follow: {seen}{suffix} runs aggregated",
                  file=sys.stderr, flush=True)

        report = follow_report(
            results_path, total=total, mode=mode,
            interval=args.interval, on_update=on_update,
        )
    else:
        if not os.path.exists(results_path):
            print(f"error: {results_path}: no results here -- "
                  "run the campaign first (or pass --follow to wait for it)",
                  file=sys.stderr)
            return 2
        records, warnings = read_jsonl_partial(results_path)
        for warning in warnings:
            print(f"warning: {warning}", file=sys.stderr)
        report = aggregate(records, mode=mode)

    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(report_text(report))
    return 0


def _cmd_trends(args) -> int:
    from repro.obs.trends import trends_html, trends_text

    paths = args.paths or ["benchmarks", "campaigns"]
    paths = [p for p in paths if os.path.exists(p)]
    if not paths:
        print("error: none of the trend source paths exist", file=sys.stderr)
        return 2
    print(trends_text(paths))
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(trends_html(paths))
        print(f"wrote {args.html}", file=sys.stderr)
    return 0


def _cmd_compare(args) -> int:
    result = compare(
        load_results(args.baseline), load_results(args.current),
        pdr_tol=args.pdr_tol, latency_tol=args.latency_tol,
    )
    print(comparison_text(result))
    if result["regressions"]:
        return 1
    if args.strict and (
        result["removed"] or result["mismatched"] or not result["matched"]
    ):
        # Run-matrix drift means the gate compared less than it thinks:
        # a CI baseline that silently matches nothing is no gate at all.
        print(
            "strict: run matrix drifted from the baseline "
            f"(matched={result['matched']}, "
            f"removed={len(result['removed'])}, "
            f"mismatched={len(result['mismatched'])}); "
            "regenerate the baseline if the change is intentional"
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Sharded parallel scenario sweeps with aggregation "
                    "and regression baselines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_execution_args(p) -> None:
        p.add_argument("spec", help="path to a campaign spec JSON file")
        p.add_argument("--workers", type=_positive_int, default=2,
                       help="worker processes (1 runs inline; default 2)")
        p.add_argument("--batch-size", type=_positive_int, default=None,
                       help="runs grouped per worker task (default: the "
                            "spec's batch_size, else auto-tuned from the "
                            "matrix size and worker count; never changes "
                            "results)")
        p.add_argument("--shard", type=_shard_arg, default=None,
                       metavar="i/N",
                       help="execute only shard i of an N-way split of the "
                            "run matrix (checkpoint goes to "
                            "<out>/shard-i-of-N/; fuse with 'merge')")
        p.add_argument("--executor", choices=sorted(EXECUTOR_REGISTRY),
                       default="local",
                       help="execution backend (default local: a "
                            "multiprocessing pool on this host)")
        p.add_argument("--out", default=None,
                       help="output directory (default campaigns/<name>)")
        p.add_argument("--baseline", default=None,
                       help="previous results.jsonl to gate against")
        p.add_argument("--pdr-tol", type=float, default=0.02)
        p.add_argument("--latency-tol", type=float, default=0.25)
        p.add_argument("--quiet", action="store_true")
        p.add_argument("--progress", action="store_true",
                       help="print a progress ticker (with rate and ETA) "
                            "to stderr as batches complete")
        p.add_argument("--telemetry", action="store_true",
                       help="append an fsync'd telemetry.jsonl sidecar "
                            "(per-batch wall time, worker pid, runs/sec) "
                            "next to results.jsonl; never changes results")

    p_run = sub.add_parser("run", help="execute a campaign spec")
    _add_execution_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_resume = sub.add_parser(
        "resume",
        help="finish an interrupted campaign from its results.jsonl "
             "checkpoint (byte-identical to an uninterrupted run)")
    _add_execution_args(p_resume)
    p_resume.set_defaults(func=_cmd_resume)

    p_merge = sub.add_parser(
        "merge",
        help="fuse shard checkpoint directories into one campaign "
             "artifact (byte-identical to a single-host run)")
    p_merge.add_argument("spec", help="path to the campaign spec JSON file")
    p_merge.add_argument("--out", default=None,
                         help="merged output directory, also the default "
                              "place shards are discovered "
                              "(default campaigns/<name>)")
    p_merge.add_argument("--shards", nargs="+", default=None,
                         metavar="DIR",
                         help="shard checkpoint directories to merge "
                              "(default: shard-*-of-* under --out)")
    p_merge.add_argument("--allow-partial", action="store_true",
                         help="accept missing shards/runs: write the merged "
                              "records as a resumable checkpoint plus a "
                              "merge-gaps.json manifest and exit 3")
    p_merge.add_argument("--baseline", default=None,
                         help="previous results.jsonl to gate against")
    p_merge.add_argument("--pdr-tol", type=float, default=0.02)
    p_merge.add_argument("--latency-tol", type=float, default=0.25)
    p_merge.add_argument("--quiet", action="store_true")
    p_merge.add_argument("--telemetry", action="store_true",
                         help="append a v3 'merge' summary record to the "
                              "merged directory's telemetry.jsonl")
    p_merge.set_defaults(func=_cmd_merge)

    p_report = sub.add_parser("report", help="render the aggregate table")
    p_report.add_argument("results", help="results.jsonl or campaign directory")
    p_report.add_argument("--json", action="store_true",
                          help="emit the full report as JSON")
    p_report.add_argument("--follow", action="store_true",
                          help="tail a live campaign incrementally until "
                               "all expected runs land (waits for the "
                               "results file to appear)")
    p_report.add_argument("--interval", type=float, default=0.5,
                          help="poll interval for --follow (seconds, "
                               "default 0.5)")
    p_report.add_argument("--summary-mode", choices=SUMMARY_MODES,
                          default=None,
                          help="column reduction: exact (mean/min/max) or "
                               "sketch (adds streaming p50/p95); default: "
                               "the campaign spec's summary_mode")
    p_report.set_defaults(func=_cmd_report)

    p_trends = sub.add_parser(
        "trends",
        help="sparkline dashboard of cross-campaign history "
             "(BENCH_*.json + report.json files)")
    p_trends.add_argument("paths", nargs="*",
                          help="files/directories to scan "
                               "(default: benchmarks campaigns)")
    p_trends.add_argument("--html", default=None, metavar="FILE",
                          help="also write a static HTML export")
    p_trends.set_defaults(func=_cmd_trends)

    p_cmp = sub.add_parser("compare", help="diff two results files")
    p_cmp.add_argument("baseline")
    p_cmp.add_argument("current")
    p_cmp.add_argument("--pdr-tol", type=float, default=0.02)
    p_cmp.add_argument("--latency-tol", type=float, default=0.25)
    p_cmp.add_argument("--strict", action="store_true",
                       help="also fail when the run matrix drifted "
                            "(removed/mismatched/zero matched runs)")
    p_cmp.set_defaults(func=_cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into head); not an error
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except CampaignInterrupted as exc:
        # Graceful SIGINT/SIGTERM shutdown: the checkpoint is flushed;
        # exit with the conventional 128+signum so wrappers see the kill.
        print(f"interrupted: {exc}", file=sys.stderr)
        return 128 + exc.signum
    except FileNotFoundError as exc:
        print(f"error: {exc.filename or exc}: no such file", file=sys.stderr)
        return 2
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
