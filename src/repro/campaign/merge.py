"""``campaign merge``: fuse shard checkpoints into one campaign artifact.

The contract is byte-identity: merging any shard split of a campaign
produces ``results.jsonl`` / ``report.json`` / ``report.txt`` identical
to a single-host run of the same spec, because every shard's records
are validated against the *same* full-matrix expansion the single-host
runner uses, then sorted by run index and written with the same
serializers (:func:`~repro.campaign.aggregate.write_jsonl`,
:func:`~repro.campaign.aggregate.write_report_artifacts`).

Validation is layered, reusing the resume machinery per record and
adding cross-shard checks on top:

* **Provenance** -- a shard whose ``spec.json`` / ``shard.json``
  fingerprint does not match the merge spec refuses the whole merge
  (mixing matrices would silently produce garbage), as do manifests
  that disagree on the shard count.
* **Per record** -- torn final lines are discarded
  (:func:`~repro.campaign.aggregate.read_jsonl_partial`), and records
  whose run_id/seed/params drifted from the expansion are dropped with
  a warning, exactly like ``campaign resume``.
* **Cross shard** -- the same run index appearing in several shards is
  deduplicated when the copies are byte-identical; copies that *differ*
  are a conflict: every copy is quarantined to
  ``merge-conflicts.jsonl`` (schema checked by
  :func:`validate_merge_conflicts_file`) and the index becomes a gap.
* **Gaps** -- missing runs (a lost host, a conflict) refuse the merge
  unless ``allow_partial=True``, which instead writes the merged
  records as a *resumable checkpoint* plus a ``merge-gaps.json``
  manifest; ``campaign resume`` then executes exactly the holes (with
  the runner's own retry/backoff/quarantine machinery) and finalizes
  byte-identical artifacts.  A lost host costs its unfinished runs,
  never the campaign.

Merging is idempotent and order-independent: any shard order, repeated
merges, and re-merging an already-merged directory (a plain campaign
directory is accepted as a degenerate "shard") all yield the same
bytes.
"""

from __future__ import annotations

import json
import os

from repro.campaign.aggregate import (
    aggregate,
    read_jsonl_partial,
    write_json_artifact,
    write_jsonl,
    write_report_artifacts,
)
from repro.campaign.shard import (
    fingerprint_digest,
    load_shard_manifest,
    parse_shard_dir_name,
    spec_fingerprint,
)
from repro.campaign.spec import CampaignSpec

#: Conflict quarantine sidecar written into the merge output directory.
MERGE_CONFLICTS = "merge-conflicts.jsonl"

#: Gap manifest written by a partial merge.
MERGE_GAPS = "merge-gaps.json"

#: Bumped when the gap-manifest layout changes incompatibly.
MERGE_GAPS_SCHEMA_VERSION = 1

#: Required fields of one ``merge-conflicts.jsonl`` line.
_CONFLICT_FIELDS = {
    "index": int,
    "run_id": str,
    "shard": str,
    "reason": str,
    "record": dict,
}


class MergeError(ValueError):
    """A merge that must not proceed (mismatched or incomplete shards)."""


def discover_shard_dirs(parent) -> list[str]:
    """The ``shard-i-of-N`` checkpoint directories under ``parent``, sorted.

    Sorting is by (shard_count, shard_index) so e.g. ``shard-2-of-12``
    never lands between ``shard-0-of-3`` and ``shard-1-of-3``; mixed
    shard counts are then caught by the manifest check with a clear
    error instead of an arbitrary ordering.
    """
    parent = os.fspath(parent)
    if not os.path.isdir(parent):
        return []
    found = []
    for name in os.listdir(parent):
        parsed = parse_shard_dir_name(name)
        if parsed is not None and os.path.isdir(os.path.join(parent, name)):
            found.append((parsed[1], parsed[0], os.path.join(parent, name)))
    return [path for _count, _index, path in sorted(found)]


def validate_merge_conflicts_file(path) -> int:
    """Validate every line of a ``merge-conflicts.jsonl``; returns the count.

    Each line quarantines one *copy* of a conflicted run index (all
    copies are kept -- the evidence for diagnosing which host computed
    garbage).  Raises ``ValueError`` on the first malformed line.
    """
    count = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: line {lineno}: {exc}") from exc
            if not isinstance(entry, dict):
                raise ValueError(
                    f"{path}: line {lineno}: conflict entry must be an "
                    f"object, got {type(entry).__name__}"
                )
            for name, expected in _CONFLICT_FIELDS.items():
                if name not in entry:
                    raise ValueError(
                        f"{path}: line {lineno}: missing field {name!r}"
                    )
                value = entry[name]
                if expected is int:
                    ok = isinstance(value, int) and not isinstance(value, bool)
                else:
                    ok = isinstance(value, expected)
                if not ok:
                    raise ValueError(
                        f"{path}: line {lineno}: field {name!r} must be "
                        f"{expected.__name__}, got {type(value).__name__}"
                    )
            count += 1
    return count


def _collect_shard_records(spec_dict: dict, payloads: dict, shard_dirs,
                           say) -> tuple[dict, dict]:
    """Validated candidate records per run index, plus per-shard counts.

    Returns ``(candidates, per_shard_kept)`` where ``candidates`` maps
    run index to a list of ``(shard_name, record, canonical_json)`` and
    ``per_shard_kept`` maps shard name to how many records survived
    validation.  Raises :class:`MergeError` on provenance violations.
    """
    expected_digest = fingerprint_digest(spec_dict)
    want = spec_fingerprint(spec_dict)
    candidates: dict[int, list] = {}
    per_shard_kept: dict[str, int] = {}
    shard_counts: dict[str, int] = {}
    for shard_dir in shard_dirs:
        name = os.path.basename(os.path.normpath(os.fspath(shard_dir)))
        if name in per_shard_kept:
            raise MergeError(f"shard directory {name!r} given twice")
        per_shard_kept[name] = 0

        spec_path = os.path.join(shard_dir, "spec.json")
        if os.path.exists(spec_path):
            with open(spec_path, "r", encoding="utf-8") as fh:
                saved = json.load(fh)
            if spec_fingerprint(saved) != want:
                raise MergeError(
                    f"{shard_dir}: spec.json was written by a different "
                    "campaign spec; merging it would mix matrices"
                )
        manifest = load_shard_manifest(shard_dir)
        if manifest is not None:
            if manifest["fingerprint"] != expected_digest:
                raise MergeError(
                    f"{shard_dir}: shard manifest fingerprint "
                    f"{manifest['fingerprint'][:12]}... does not match this "
                    f"spec ({expected_digest[:12]}...); refusing to merge"
                )
            shard_counts[name] = manifest["shard_count"]
            if manifest["status"] != "complete":
                say(f"warning: {shard_dir}: shard is marked "
                    f"{manifest['status']!r} -- merging its partial "
                    "checkpoint")

        results_path = os.path.join(shard_dir, "results.jsonl")
        if not os.path.exists(results_path):
            say(f"warning: {shard_dir}: no results.jsonl; "
                "treating as an empty shard")
            continue
        records, warnings = read_jsonl_partial(results_path)
        for warning in warnings:
            say(f"warning: {warning}")
        for position, record in enumerate(records, 1):
            index = record.get("index")
            payload = payloads.get(index)
            if payload is None:
                say(f"warning: {name}: discarding record {position}: index "
                    f"{index!r} is not in this campaign's run matrix")
                continue
            if (
                record.get("run_id") != payload["run_id"]
                or record.get("seed") != payload["seed"]
                or record.get("params") != payload["params"]
            ):
                say(f"warning: {name}: discarding record for index {index}: "
                    "run_id/seed/params do not match the spec (drifted?)")
                continue
            per_shard_kept[name] += 1
            candidates.setdefault(index, []).append(
                (name, record, json.dumps(record, sort_keys=True))
            )
    if len(set(shard_counts.values())) > 1:
        raise MergeError(
            "shard manifests disagree on the shard count: "
            + ", ".join(f"{n}={c}" for n, c in sorted(shard_counts.items()))
        )
    return candidates, per_shard_kept


def merge_shards(
    spec: CampaignSpec,
    shard_dirs,
    out_dir,
    allow_partial: bool = False,
    echo=None,
    telemetry: bool = False,
) -> dict:
    """Fuse shard checkpoints into ``out_dir``; returns a merge summary.

    See the module docstring for the validation layers.  On a complete
    merge the output directory holds the full single-host artifact set
    (``results.jsonl``, ``report.json``, ``report.txt``, ``spec.json``)
    byte-identical to an unsharded run.  On a partial merge (only with
    ``allow_partial``) it holds the merged records as a resumable
    checkpoint plus ``merge-gaps.json``; finish with ``campaign
    resume``.  Raises :class:`MergeError` when the merge must not
    proceed.

    The summary dict: ``shards``, ``per_shard_runs`` (kept records per
    shard, in the order the dirs were processed after sorting),
    ``runs`` (merged), ``total`` (expected), ``conflicts`` (conflicted
    indices), ``gaps`` (missing indices, conflicts included),
    ``complete``.
    """
    say = echo or (lambda _msg: None)
    shard_dirs = [os.fspath(d) for d in shard_dirs]
    if not shard_dirs:
        raise MergeError("no shard directories to merge")
    out_dir = os.fspath(out_dir)
    spec_dict = spec.to_dict()
    payloads = {r.index: r.to_dict() for r in spec.expand()}

    candidates, per_shard_kept = _collect_shard_records(
        spec_dict, payloads, shard_dirs, say
    )

    merged: dict[int, dict] = {}
    conflicts: list[dict] = []
    for index in sorted(candidates):
        entries = candidates[index]
        if len({canonical for _, _, canonical in entries}) == 1:
            merged[index] = entries[0][1]
            continue
        # Differing payloads for the same run index: with deterministic
        # runs this means a corrupted checkpoint or a mis-provenanced
        # file -- no copy can be trusted, so all of them are quarantined
        # (sorted for order-independent output) and the index is re-run
        # via resume.
        for shard_name, record, canonical in sorted(
            entries, key=lambda e: (e[0], e[2])
        ):
            conflicts.append({
                "index": index,
                "run_id": record.get("run_id", ""),
                "shard": shard_name,
                "reason": "overlapping run index with differing payloads",
                "record": record,
            })
        say(f"conflict: index {index} has {len(entries)} differing copies; "
            f"quarantining all of them to {MERGE_CONFLICTS}")

    conflict_indices = sorted({c["index"] for c in conflicts})
    missing = sorted(set(payloads) - set(merged))
    complete = not missing
    if not complete and not allow_partial:
        preview = ", ".join(str(i) for i in missing[:8])
        if len(missing) > 8:
            preview += ", ..."
        raise MergeError(
            f"merge incomplete: {len(missing)} of {len(payloads)} runs "
            f"missing (indices {preview})"
            + (f"; {len(conflict_indices)} conflicted"
               if conflict_indices else "")
            + " -- re-run the missing shards, or pass --allow-partial to "
            "write a resumable checkpoint plus a gap manifest"
        )

    os.makedirs(out_dir, exist_ok=True)
    conflicts_path = os.path.join(out_dir, MERGE_CONFLICTS)
    if conflicts:
        with open(conflicts_path, "a", encoding="utf-8") as fh:
            for entry in conflicts:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        say(f"quarantined {len(conflicts)} conflicting record copies "
            f"({len(conflict_indices)} run indices) -> {conflicts_path}")

    # The merged spec provenance is the *unsharded* spec: the merge
    # output is a plain campaign directory, resumable and re-mergeable.
    normalized = dict(spec_dict)
    normalized["shards"] = None
    normalized["shard_index"] = None
    write_json_artifact(os.path.join(out_dir, "spec.json"), normalized)

    records = [merged[index] for index in sorted(merged)]
    results_path = os.path.join(out_dir, "results.jsonl")
    tmp = results_path + ".tmp"
    write_jsonl(tmp, records, fsync=True)
    os.replace(tmp, results_path)

    gaps_path = os.path.join(out_dir, MERGE_GAPS)
    if complete:
        report = aggregate(records, mode=spec.summary_mode)
        report["campaign"] = spec.name
        write_report_artifacts(out_dir, report)
        if os.path.exists(gaps_path):
            # a previous partial merge's manifest: the holes are filled
            os.remove(gaps_path)
        say(f"merged {len(shard_dirs)} shard(s): {len(records)}/"
            f"{len(payloads)} runs -> {results_path}")
    else:
        # Partial: the merged records are a valid resume checkpoint; a
        # stale report from an earlier life of this directory would
        # misrepresent it, so drop reports until resume re-finalizes.
        for stale in ("report.json", "report.txt"):
            stale_path = os.path.join(out_dir, stale)
            if os.path.exists(stale_path):
                os.remove(stale_path)
        write_json_artifact(gaps_path, {
            "v": MERGE_GAPS_SCHEMA_VERSION,
            "campaign": spec.name,
            "total_runs": len(payloads),
            "merged_runs": len(records),
            "missing_indices": missing,
            "conflict_indices": conflict_indices,
            "resume": "python -m repro.campaign resume <spec.json> "
                      f"--out {out_dir}",
        })
        say(f"partial merge: {len(records)}/{len(payloads)} runs, "
            f"{len(missing)} gap(s) -> {gaps_path}; finish with "
            "'campaign resume'")

    summary = {
        "campaign": spec.name,
        "shards": len(shard_dirs),
        "per_shard_runs": [per_shard_kept[os.path.basename(
            os.path.normpath(d))] for d in shard_dirs],
        "conflicts": len(conflict_indices),
        "gaps": len(missing),
        "runs": len(records),
        "total": len(payloads),
        "complete": complete,
    }
    if telemetry:
        from repro.obs.telemetry import TelemetryTracker

        tracker = TelemetryTracker(os.path.join(out_dir, "telemetry.jsonl"))
        try:
            tracker.merge(
                campaign=summary["campaign"],
                shards=summary["shards"],
                per_shard_runs=summary["per_shard_runs"],
                conflicts=summary["conflicts"],
                gaps=summary["gaps"],
                runs=summary["runs"],
                total=summary["total"],
                complete=summary["complete"],
            )
        finally:
            tracker.close()
    return summary
