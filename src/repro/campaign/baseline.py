"""Baseline snapshots: detect PDR/latency regressions between campaigns.

A baseline is simply a saved ``results.jsonl`` from a previous run of
the same campaign spec (same name, seed, axes).  Because records are
deterministic and sorted, comparison is a run_id-aligned walk flagging:

* runs that were ``ok`` and now fail (or time out),
* PDR drops beyond an absolute tolerance,
* latency-p95 growth beyond a relative tolerance,
* runs added to / removed from the matrix (spec drift -- reported, not
  treated as a regression).

Because the runner streams and resumes campaigns, a ``current`` record
list may come from an in-flight sweep (via
:func:`~repro.campaign.aggregate.load_results_partial`); its missing
runs then show up as ``removed`` -- visible in the comparison text, and
fatal under the CLI's ``--strict`` gate -- rather than crashing the
walk.  Finalized outputs are byte-identical regardless of worker count,
batch size, or resume history, so comparisons never need to care how a
results file was produced.
"""

from __future__ import annotations

#: Ignore latency regressions below this many seconds of absolute growth
#: (keeps micro-jitter on near-zero latencies from tripping the gate).
_LATENCY_ABS_FLOOR = 1e-3


def compare(
    baseline: list[dict],
    current: list[dict],
    pdr_tol: float = 0.02,
    latency_tol: float = 0.25,
) -> dict:
    """Compare two record lists; see module docstring for the checks."""
    base_by_id = {r["run_id"]: r for r in baseline}
    cur_by_id = {r["run_id"]: r for r in current}

    regressions: list[str] = []
    improvements: list[str] = []
    mismatched: list[str] = []
    matched = 0

    for run_id in sorted(base_by_id.keys() & cur_by_id.keys()):
        base, cur = base_by_id[run_id], cur_by_id[run_id]
        if base.get("params") != cur.get("params"):
            # same run_id but a different grid point: the spec drifted
            # (an axis value changed without changing cardinality);
            # comparing metrics would diff unrelated scenarios
            mismatched.append(
                f"{run_id}: params changed "
                f"{base.get('params')} -> {cur.get('params')}"
            )
            continue
        matched += 1
        if base["status"] == "ok" and cur["status"] != "ok":
            regressions.append(
                f"{run_id}: was ok, now {cur['status']} "
                f"({cur.get('error', '')})"
            )
            continue
        if base["status"] != "ok" and cur["status"] == "ok":
            improvements.append(f"{run_id}: was {base['status']}, now ok")
            continue
        if base["status"] != "ok" or cur["status"] != "ok":
            continue

        base_sum, cur_sum = base["summary"], cur["summary"]
        base_pdr = base_sum.get("pdr", 0.0)
        cur_pdr = cur_sum.get("pdr", 0.0)
        pdr_delta = cur_pdr - base_pdr
        if pdr_delta < -pdr_tol:
            regressions.append(
                f"{run_id}: pdr {base_pdr:.3f} -> {cur_pdr:.3f} "
                f"(drop {-pdr_delta:.3f} > tol {pdr_tol})"
            )
        elif pdr_delta > pdr_tol:
            improvements.append(f"{run_id}: pdr {base_pdr:.3f} -> {cur_pdr:.3f}")

        base_lat = base_sum.get("latency_p95", 0.0)
        cur_lat = cur_sum.get("latency_p95", 0.0)
        grew = cur_lat - base_lat
        # base_lat == 0 means the baseline delivered nothing; any growth
        # is then new delivery (an improvement), not a latency regression
        if (base_lat > 0.0 and grew > _LATENCY_ABS_FLOOR
                and cur_lat > base_lat * (1.0 + latency_tol)):
            regressions.append(
                f"{run_id}: latency_p95 {base_lat:.4f}s -> {cur_lat:.4f}s "
                f"(> {latency_tol:.0%} growth)"
            )

    return {
        "matched": matched,
        "added": sorted(cur_by_id.keys() - base_by_id.keys()),
        "removed": sorted(base_by_id.keys() - cur_by_id.keys()),
        "mismatched": mismatched,
        "regressions": regressions,
        "improvements": improvements,
    }


def comparison_text(result: dict) -> str:
    lines = [
        f"Baseline comparison: {result['matched']} matched run(s), "
        f"{len(result['regressions'])} regression(s), "
        f"{len(result['improvements'])} improvement(s)"
    ]
    for reg in result["regressions"]:
        lines.append(f"  REGRESSION {reg}")
    for imp in result["improvements"]:
        lines.append(f"  improved   {imp}")
    for drift in result.get("mismatched", []):
        lines.append(f"  SPEC DRIFT {drift}")
    if result["added"]:
        lines.append(f"  added runs: {', '.join(result['added'])}")
    if result["removed"]:
        lines.append(f"  removed runs: {', '.join(result['removed'])}")
    return "\n".join(lines)
