"""Sharded campaign execution: deterministic partitioning + provenance.

A campaign shard is one slice of a campaign's run matrix, executed on
its own host (or CI matrix job) with its own crash-safe checkpoint.
The split is a pure function of the *full* expansion: run ``index``
belongs to shard ``index % shard_count``, and seeds/run_ids are derived
before the split, so no shard count or assignment can ever change what
a run computes -- only where it executes.  ``campaign merge``
(:mod:`repro.campaign.merge`) fuses the shard checkpoints back into one
artifact byte-identical to an unsharded run.

Each shard writes its checkpoint under ``<out>/shard-<i>-of-<N>/``:

* ``results.jsonl`` -- the fsync'd streaming checkpoint (same format
  and recovery semantics as a single-host run's);
* ``spec.json`` -- the spec as executed (including this shard's
  ``shards``/``shard_index``, which are folded *out* of the resume
  fingerprint like the retry knobs);
* ``shard.json`` -- the provenance manifest validated here: schema
  version, campaign name, spec fingerprint digest, shard assignment,
  run counts, and a coarse liveness signal (the manifest's mtime is
  touched every time a record lands, so an operator -- or a future
  work-stealing scheduler -- can spot a shard whose host died mid-run
  without parsing its checkpoint).

Fingerprinting lives here too: :func:`spec_fingerprint` strips the
execution/reporting-only spec keys (batch size, summary mode, retry
knobs, shard assignment) so that resume and merge compare only the keys
that determine results.
"""

from __future__ import annotations

import hashlib
import json
import os
import re

#: Manifest filename inside a shard directory.
SHARD_MANIFEST = "shard.json"

#: Bumped when the manifest layout changes incompatibly.
SHARD_SCHEMA_VERSION = 1

#: Spec keys that never change what a run computes: execution strategy
#: (how hard/where the matrix is executed) and report reduction.  They
#: are removed before any fingerprint comparison, so changing them
#: never blocks a resume or a merge.
EXECUTION_ONLY_KEYS = (
    "batch_size",
    "summary_mode",
    "retry_max_attempts",
    "retry_backoff",
    "shards",
    "shard_index",
)

_SHARD_DIR_RE = re.compile(r"^shard-(\d+)-of-(\d+)$")

#: Required manifest fields and their types.
_MANIFEST_FIELDS = {
    "v": int,
    "campaign": str,
    "fingerprint": str,
    "shard_index": int,
    "shard_count": int,
    "total_runs": int,
    "assigned_runs": int,
    "status": str,
}

_MANIFEST_STATUSES = ("running", "complete")


# -- fingerprints --------------------------------------------------------
def spec_fingerprint(data: dict) -> dict:
    """Spec dict minus execution/reporting-only keys.

    The keys in :data:`EXECUTION_ONLY_KEYS` govern how a matrix is
    executed or reported, never what a run computes, so none of them may
    block a resume or a merge.
    """
    data = dict(data)
    for key in EXECUTION_ONLY_KEYS:
        data.pop(key, None)
    return data


def fingerprint_digest(data: dict) -> str:
    """Stable hex digest of a spec's result-determining content.

    Canonical JSON (sorted keys) of :func:`spec_fingerprint`, hashed so
    a shard manifest can carry provenance in one short field.
    """
    canonical = json.dumps(spec_fingerprint(data), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- shard arithmetic ----------------------------------------------------
def parse_shard(text: str) -> tuple[int, int]:
    """Parse an ``i/N`` shard spec into ``(shard_index, shard_count)``.

    Rejects malformed input (``"3/2"``, ``"0/0"``, ``"x/y"``) with a
    one-line ``ValueError`` so the CLI can exit 2 instead of letting a
    bad split traceback deep in the runner.
    """
    match = re.fullmatch(r"(\d+)/(\d+)", str(text).strip())
    if match is None:
        raise ValueError(
            f"shard spec must be i/N (e.g. 0/3), got {text!r}"
        )
    shard_index, shard_count = int(match.group(1)), int(match.group(2))
    if shard_count < 1:
        raise ValueError(f"shard count must be >= 1, got {text!r}")
    if shard_index >= shard_count:
        raise ValueError(
            f"shard index must be in [0, {shard_count}), got {text!r}"
        )
    return shard_index, shard_count


def shard_dir_name(shard_index: int, shard_count: int) -> str:
    """Canonical checkpoint directory name for one shard."""
    return f"shard-{int(shard_index)}-of-{int(shard_count)}"


def parse_shard_dir_name(name: str) -> tuple[int, int] | None:
    """Inverse of :func:`shard_dir_name`; ``None`` for other names."""
    match = _SHARD_DIR_RE.match(name)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def assigned_to_shard(index: int, shard_index: int, shard_count: int) -> bool:
    """Whether run ``index`` of the full matrix belongs to this shard."""
    return index % shard_count == shard_index


def shard_payloads(payloads: list[dict], shard_index: int,
                   shard_count: int) -> list[dict]:
    """The slice of an expanded matrix assigned to one shard.

    Partitioning is by run index modulo shard count: deterministic,
    disjoint, and (for grids, where neighbouring indices share axis
    values) roughly load-balanced.  The payloads must come from the
    *full* expansion so run_ids and seeds are split-independent.
    """
    return [p for p in payloads
            if assigned_to_shard(p["index"], shard_index, shard_count)]


# -- the provenance manifest --------------------------------------------
def write_shard_manifest(out_dir, spec_dict: dict, shard_index: int,
                         shard_count: int, total_runs: int,
                         assigned_runs: int, status: str = "running") -> str:
    """Write (fsync'd) ``shard.json`` into a shard's checkpoint dir."""
    manifest = {
        "v": SHARD_SCHEMA_VERSION,
        "campaign": str(spec_dict.get("name", "campaign")),
        "fingerprint": fingerprint_digest(spec_dict),
        "shard_index": int(shard_index),
        "shard_count": int(shard_count),
        "total_runs": int(total_runs),
        "assigned_runs": int(assigned_runs),
        "status": str(status),
    }
    validate_shard_manifest(manifest)
    path = os.path.join(os.fspath(out_dir), SHARD_MANIFEST)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_shard_manifest(out_dir) -> dict | None:
    """The validated ``shard.json`` of a directory, or ``None`` if absent."""
    path = os.path.join(os.fspath(out_dir), SHARD_MANIFEST)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    validate_shard_manifest(manifest, source=path)
    return manifest


def validate_shard_manifest(manifest: dict, source: str = "shard manifest") -> None:
    """Raise ``ValueError`` unless ``manifest`` matches the schema."""
    if not isinstance(manifest, dict):
        raise ValueError(
            f"{source}: must be an object, got {type(manifest).__name__}"
        )
    if manifest.get("v") != SHARD_SCHEMA_VERSION:
        raise ValueError(
            f"{source}: schema version {manifest.get('v')!r} "
            f"(expected {SHARD_SCHEMA_VERSION})"
        )
    for name, expected in _MANIFEST_FIELDS.items():
        if name not in manifest:
            raise ValueError(f"{source}: missing field {name!r}")
        value = manifest[name]
        if expected is int:
            ok = isinstance(value, int) and not isinstance(value, bool)
        else:
            ok = isinstance(value, expected)
        if not ok:
            raise ValueError(
                f"{source}: field {name!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    if manifest["shard_count"] < 1:
        raise ValueError(f"{source}: shard_count must be >= 1")
    if not 0 <= manifest["shard_index"] < manifest["shard_count"]:
        raise ValueError(
            f"{source}: shard_index {manifest['shard_index']} out of range "
            f"for shard_count {manifest['shard_count']}"
        )
    if manifest["status"] not in _MANIFEST_STATUSES:
        raise ValueError(
            f"{source}: status must be one of {_MANIFEST_STATUSES}, "
            f"got {manifest['status']!r}"
        )


def touch_heartbeat(out_dir) -> None:
    """Bump the manifest mtime: the shard's coarse liveness signal.

    Called by the runner as each record lands, so a stalled mtime on a
    ``"running"`` manifest marks a shard whose host likely died.  Best
    effort -- a missing manifest is ignored, not an error.
    """
    path = os.path.join(os.fspath(out_dir), SHARD_MANIFEST)
    try:
        os.utime(path)
    except OSError:
        pass
