"""Campaign specifications: declarative sweeps over scenario knobs.

A :class:`CampaignSpec` describes a whole evaluation programme as data:
a base scenario (the plain-dict form consumed by
:meth:`repro.scenarios.ScenarioBuilder.from_spec`), a grid of axes to
sweep, optional random samples, a traffic workload, an adversary mix,
and a replicate count.  :meth:`CampaignSpec.expand` turns that into the
concrete, fully-resolved list of :class:`RunSpec` the runner executes.

Axis paths are dotted keys.  A path whose first segment is one of
``workload``, ``adversaries``, ``bootstrap`` or ``duration`` overrides
the run-level field; every other path indexes into the scenario spec::

    "topology.n":         [9, 16, 25]          # scenario knob
    "router":             ["secure", "plain"]  # scenario knob
    "radio.loss_rate":    [0.0, 0.1]           # scenario knob
    "workload.interval":  [0.5, 2.0]           # run knob
    "adversaries":        [[], [BLACKHOLE]]    # run knob (attacker mix)

Every run gets its own master seed via
:func:`repro.sim.rng.spawn_seed`, so results depend only on
``(campaign seed, run index)`` -- never on worker scheduling.
"""

from __future__ import annotations

import copy
import itertools
import json
from dataclasses import asdict, dataclass, field

from repro.sim.rng import SimRNG, spawn_seed

#: Top-level axis segments that target the run rather than the scenario.
_RUN_LEVEL_SEGMENTS = {"workload", "adversaries", "bootstrap", "duration"}

_DEFAULT_WORKLOAD = {
    "kind": "cbr",
    "flows": 1,
    "interval": 1.0,
    "count": 10,
    "payload_size": 64,
}

_DEFAULT_BOOTSTRAP = {"stagger": 0.25}

_KNOWN_KEYS = {
    "name", "seed", "replicates", "base", "axes", "samples",
    "workload", "adversaries", "bootstrap", "duration", "timeout",
    "batch_size", "summary_mode", "retry_max_attempts", "retry_backoff",
    "shards", "shard_index",
}


def set_by_path(target: dict, path: str, value) -> None:
    """Set ``target['a']['b'] = value`` for path ``"a.b"``, creating dicts."""
    parts = path.split(".")
    node = target
    for part in parts[:-1]:
        node = node.setdefault(part, {})
        if not isinstance(node, dict):
            raise ValueError(f"axis path {path!r} descends into non-dict {part!r}")
    node[parts[-1]] = value


@dataclass
class RunSpec:
    """One fully-resolved run of the matrix; plain data, pickles cheaply."""

    run_id: str
    index: int
    replicate: int
    seed: int
    params: dict
    scenario: dict
    workload: dict
    adversaries: list
    bootstrap: dict
    duration: float
    timeout: float

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        return cls(**data)


@dataclass
class CampaignSpec:
    """A declarative sweep; see the module docstring for the axis rules."""

    name: str = "campaign"
    seed: int = 0
    replicates: int = 1
    #: Base scenario spec (``ScenarioBuilder.from_spec`` format, sans seed).
    base: dict = field(default_factory=dict)
    #: Dotted path -> list of values; expanded as a full cartesian grid.
    axes: dict = field(default_factory=dict)
    #: Random sampling: ``{"count": N, "space": {path: [lo, hi] | {"choices": [...]}}}``.
    samples: dict = field(default_factory=dict)
    workload: dict = field(default_factory=lambda: dict(_DEFAULT_WORKLOAD))
    adversaries: list = field(default_factory=list)
    bootstrap: dict = field(default_factory=lambda: dict(_DEFAULT_BOOTSTRAP))
    duration: float = 30.0
    #: Per-run wall-clock budget (seconds); exceeded runs report "timeout".
    timeout: float = 120.0
    #: Runs grouped per worker task; ``None`` auto-tunes from the matrix
    #: size and worker count (see :func:`repro.campaign.runner.auto_batch_size`).
    #: Execution-only: never changes results, only dispatch overhead.
    batch_size: int | None = None
    #: How the aggregate report reduces each summary column: ``"exact"``
    #: (mean/min/max) or ``"sketch"`` (adds constant-memory p50/p95 via
    #: P^2 estimators -- see :mod:`repro.obs.sketch`).  Reporting-only:
    #: never changes ``results.jsonl``, so it is resume-compatible.
    summary_mode: str = "exact"
    #: Total execution attempts per run when a worker *dies* mid-batch
    #: (original + retries).  Execution-only (like batch_size): a run
    #: whose retry eventually succeeds produces its canonical record;
    #: one that exhausts the budget is quarantined.  In-process
    #: exceptions are deterministic and never retried.
    retry_max_attempts: int = 3
    #: Base sleep (seconds) before retry n: retry_backoff * 2**(n-1).
    retry_backoff: float = 0.5
    #: Shard assignment for distributed execution: this campaign runs
    #: only the run indices ``index % shards == shard_index`` of the
    #: *full* matrix (seeds/run_ids are expanded first, so they never
    #: depend on the shard split).  Both-or-neither with
    #: ``shard_index``; usually set via ``campaign run --shard i/N``.
    #: Execution-only, like batch_size: folded out of the resume
    #: fingerprint, and ``campaign merge`` fuses shard checkpoints into
    #: an artifact byte-identical to an unsharded run.
    shards: int | None = None
    #: Which shard of ``shards`` this execution is (0-based).
    shard_index: int | None = None

    # -- construction ---------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        unknown = set(data) - _KNOWN_KEYS
        if unknown:
            raise ValueError(f"unknown campaign spec keys: {sorted(unknown)}")
        if "base" not in data:
            raise ValueError("campaign spec requires a 'base' scenario")
        spec = cls(
            name=str(data.get("name", "campaign")),
            seed=int(data.get("seed", 0)),
            replicates=int(data.get("replicates", 1)),
            base=copy.deepcopy(data["base"]),
            axes=copy.deepcopy(data.get("axes", {})),
            samples=copy.deepcopy(data.get("samples", {})),
            workload={**_DEFAULT_WORKLOAD, **data.get("workload", {})},
            adversaries=copy.deepcopy(data.get("adversaries", [])),
            bootstrap={**_DEFAULT_BOOTSTRAP, **data.get("bootstrap", {})},
            duration=float(data.get("duration", 30.0)),
            timeout=float(data.get("timeout", 120.0)),
            batch_size=(int(data["batch_size"])
                        if data.get("batch_size") is not None else None),
            summary_mode=str(data.get("summary_mode", "exact")),
            retry_max_attempts=int(data.get("retry_max_attempts", 3)),
            retry_backoff=float(data.get("retry_backoff", 0.5)),
            shards=(int(data["shards"])
                    if data.get("shards") is not None else None),
            shard_index=(int(data["shard_index"])
                         if data.get("shard_index") is not None else None),
        )
        if spec.replicates < 1:
            raise ValueError("replicates must be >= 1")
        if spec.batch_size is not None and spec.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if spec.retry_max_attempts < 1:
            raise ValueError("retry_max_attempts must be >= 1")
        if spec.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if spec.summary_mode not in ("exact", "sketch"):
            raise ValueError(
                f"summary_mode must be 'exact' or 'sketch', "
                f"not {spec.summary_mode!r}"
            )
        if (spec.shards is None) != (spec.shard_index is None):
            raise ValueError("shards and shard_index must be set together")
        if spec.shards is not None:
            if spec.shards < 1:
                raise ValueError("shards must be >= 1")
            if not 0 <= spec.shard_index < spec.shards:
                raise ValueError(
                    f"shard_index must be in [0, {spec.shards}), "
                    f"got {spec.shard_index}"
                )
        for path, values in spec.axes.items():
            if not isinstance(values, list) or not values:
                raise ValueError(f"axis {path!r} must map to a non-empty list")
        return spec

    @classmethod
    def from_file(cls, path) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "replicates": self.replicates,
            "base": copy.deepcopy(self.base),
            "axes": copy.deepcopy(self.axes),
            "samples": copy.deepcopy(self.samples),
            "workload": copy.deepcopy(self.workload),
            "adversaries": copy.deepcopy(self.adversaries),
            "bootstrap": copy.deepcopy(self.bootstrap),
            "duration": self.duration,
            "timeout": self.timeout,
            "batch_size": self.batch_size,
            "summary_mode": self.summary_mode,
            "retry_max_attempts": self.retry_max_attempts,
            "retry_backoff": self.retry_backoff,
            "shards": self.shards,
            "shard_index": self.shard_index,
        }

    # -- expansion -------------------------------------------------------
    def _grid_points(self) -> list[dict]:
        """Cartesian product of the axes, in sorted-key order."""
        if not self.axes:
            return [{}]
        paths = sorted(self.axes)
        points = []
        for combo in itertools.product(*(self.axes[p] for p in paths)):
            points.append(dict(zip(paths, combo)))
        return points

    def _sampled_points(self) -> list[dict]:
        """Random points drawn deterministically from ``samples.space``."""
        count = int(self.samples.get("count", 0))
        space = self.samples.get("space", {})
        if count <= 0 or not space:
            return []
        rng = SimRNG(self.seed, "campaign/samples")
        points = []
        for _ in range(count):
            point = {}
            for path in sorted(space):
                domain = space[path]
                if isinstance(domain, dict) and "choices" in domain:
                    point[path] = rng.choice(domain["choices"])
                elif (
                    isinstance(domain, list)
                    and len(domain) == 2
                    and all(isinstance(v, (int, float)) for v in domain)
                ):
                    lo, hi = domain
                    if isinstance(lo, int) and isinstance(hi, int):
                        point[path] = rng.randint(lo, hi)
                    else:
                        point[path] = rng.uniform(float(lo), float(hi))
                else:
                    raise ValueError(
                        f"sample space for {path!r} must be [lo, hi] or "
                        "{'choices': [...]}"
                    )
            points.append(point)
        return points

    def expand(self) -> list[RunSpec]:
        """The full run matrix: (grid + samples) x replicates.

        With no axes declared, the grid contributes the single base
        point -- unless random samples are requested, in which case the
        samples alone define the matrix.
        """
        sampled = self._sampled_points()
        grid = self._grid_points() if (self.axes or not sampled) else []
        runs = []
        index = 0
        for params in grid + sampled:
            for replicate in range(self.replicates):
                seed = spawn_seed(self.seed, index)
                scenario = copy.deepcopy(self.base)
                run_level = {
                    "workload": copy.deepcopy(self.workload),
                    "adversaries": copy.deepcopy(self.adversaries),
                    "bootstrap": copy.deepcopy(self.bootstrap),
                    "duration": self.duration,
                }
                for path, value in params.items():
                    head = path.split(".", 1)[0]
                    if head in _RUN_LEVEL_SEGMENTS:
                        if path == head:
                            run_level[head] = copy.deepcopy(value)
                        else:
                            set_by_path(run_level, path, copy.deepcopy(value))
                    else:
                        set_by_path(scenario, path, copy.deepcopy(value))
                scenario["seed"] = seed
                runs.append(RunSpec(
                    run_id=f"{self.name}-{index:04d}",
                    index=index,
                    replicate=replicate,
                    seed=seed,
                    params=copy.deepcopy(params),
                    scenario=scenario,
                    workload=run_level["workload"],
                    adversaries=run_level["adversaries"],
                    bootstrap=run_level["bootstrap"],
                    duration=float(run_level["duration"]),
                    timeout=self.timeout,
                ))
                index += 1
        return runs
