"""repro -- reproduction of "Secure Bootstrapping and Routing in an
IPv6-Based Ad Hoc Network" (Tseng, Jiang, Lee; ICPP 2003).

The package provides a complete, laptop-scale implementation of the
paper's protocol suite on top of a deterministic discrete-event MANET
simulator:

* :mod:`repro.sim`       -- discrete-event kernel, deterministic RNG
* :mod:`repro.phy`       -- unit-disk wireless medium, mobility, topologies
* :mod:`repro.crypto`    -- from-scratch RSA + simulated-signature backends
* :mod:`repro.ipv6`      -- IPv6 addresses, site-local prefix, CGAs (Fig. 1)
* :mod:`repro.messages`  -- Table 1 control messages + codec
* :mod:`repro.ndp`       -- one-hop NDP/DAD baseline (RFC 2461)
* :mod:`repro.bootstrap` -- secure address autoconfiguration (Sec. 3.1)
* :mod:`repro.dns`       -- the DNS trust anchor (Sec. 3.2)
* :mod:`repro.routing`   -- secure DSR + DSR/BSAR-like baselines (Sec. 3.3-3.4)
* :mod:`repro.credit`    -- credit management (Sec. 3.4)
* :mod:`repro.core`      -- the protocol node tying everything together
* :mod:`repro.adversary` -- the Section 4 attackers
* :mod:`repro.metrics`   -- measurement plumbing
* :mod:`repro.trace`     -- message-sequence recording (Figs. 2-3)
* :mod:`repro.scenarios` -- network builders and workloads

Quickstart::

    from repro.scenarios import ScenarioBuilder

    scenario = ScenarioBuilder(seed=7).chain(5).with_dns().build()
    scenario.bootstrap_all()
    alice, bob = scenario.hosts[0], scenario.hosts[-1]
    scenario.send_data(alice, bob.ip, b"hello over multi-hop")
    scenario.run(until=30.0)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
