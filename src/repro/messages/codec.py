"""Message <-> bytes codec and the type registry.

``encode_message`` prefixes the type id so ``decode_message`` can
round-trip any registered type.  Sizes from :func:`wire_size` back the
"overhead in bytes" numbers of the benchmarks; they include every field
that would travel on the air (signatures, public keys, route records)
but no link-layer framing.
"""

from __future__ import annotations

from typing import Type

from repro.messages.base import CodecError, Message, Reader, Writer
from repro.messages.bootstrap import AREQ, AREP, DREP
from repro.messages.data import AckPacket, DataPacket
from repro.messages.dns import (
    DNSQuery,
    DNSResponse,
    DNSUpdateChallenge,
    DNSUpdateReply,
    DNSUpdateRequest,
)
from repro.messages.ndp import NeighborAdvertisement, NeighborSolicitation
from repro.messages.routing import CREP, RERR, RREP, RREQ

#: All wire-registered message classes, keyed by type id.
MESSAGE_TYPES: dict[int, Type[Message]] = {}


def register_message_type(cls: Type[Message]) -> Type[Message]:
    """Add a message class to the wire registry (id collisions rejected)."""
    type_id = cls.META.type_id
    existing = MESSAGE_TYPES.get(type_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"type id {type_id} already used by {existing.__name__}"
        )
    MESSAGE_TYPES[type_id] = cls
    return cls


for _cls in (
    NeighborSolicitation,
    NeighborAdvertisement,
    AREQ,
    AREP,
    DREP,
    RREQ,
    RREP,
    CREP,
    RERR,
    DataPacket,
    AckPacket,
    DNSQuery,
    DNSResponse,
    DNSUpdateChallenge,
    DNSUpdateRequest,
    DNSUpdateReply,
):
    register_message_type(_cls)


#: Process-wide count of actual encode executions.  Cache hits through
#: ``Message.wire_bytes`` do not increment it, so the delta across a
#: simulation round measures exactly how many times the codec really ran
#: (MetricsCollector snapshots it per run as ``encode_calls``).
_encode_calls = 0


def encode_call_count() -> int:
    """Cumulative number of :func:`encode_message` executions so far."""
    return _encode_calls


def encode_message(msg: Message) -> bytes:
    """Serialise ``msg`` to its wire form (type id byte + fields).

    This always runs the encoder; callers that may touch the same
    message more than once should go through ``msg.wire_bytes()``, which
    caches the result on the (immutable) message.
    """
    global _encode_calls
    cls = type(msg)
    if MESSAGE_TYPES.get(cls.META.type_id) is not cls:
        raise CodecError(f"{cls.__name__} is not wire-registered")
    _encode_calls += 1
    w = Writer()
    w.u8(cls.META.type_id)
    msg._encode_fields(w)
    return w.getvalue()


def decode_message(data: bytes) -> Message:
    """Inverse of :func:`encode_message`; raises :class:`CodecError` on junk."""
    if not data:
        raise CodecError("empty message")
    r = Reader(data)
    type_id = r.u8()
    cls = MESSAGE_TYPES.get(type_id)
    if cls is None:
        raise CodecError(f"unknown message type id {type_id}")
    msg = cls._decode_fields(r)
    r.expect_exhausted()
    return msg


def wire_size(msg: Message) -> int:
    """Encoded size of ``msg`` in bytes (served from the wire cache)."""
    return msg.wire_size()


def table1_rows() -> list[tuple[str, str, str]]:
    """(Type, Function, Parameters) rows reproducing Table 1 of the paper.

    Only the seven paper control messages, in Table 1's order.
    """
    order = [AREQ, AREP, DREP, RREQ, RREP, CREP, RERR]
    return [(c.META.name, c.META.function, c.META.parameters) for c in order]
