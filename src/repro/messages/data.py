"""Source-routed data packets and end-to-end acknowledgements.

DSR data packets carry the full route in the header.  The ACK is signed
by the destination (see :func:`repro.messages.signing.ack_payload`) so
that relays cannot mint credit by forging acknowledgements -- the credit
mechanism of Section 3.4 rewards hops only on *verified* delivery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.crypto.keys import PublicKey
from repro.ipv6.address import IPv6Address
from repro.messages.base import Message, MessageMeta, Reader, Writer


def _encode_route(w: Writer, route: tuple[IPv6Address, ...]) -> None:
    w.u16(len(route))
    for hop in route:
        w.address(hop)


def _decode_route(r: Reader) -> tuple[IPv6Address, ...]:
    return tuple(r.address() for _ in range(r.u16()))


@dataclass(frozen=True)
class DataPacket(Message):
    """A source-routed data packet.

    ``route`` lists the intermediate hops only (S and D excluded),
    matching the paper's RR convention.  ``segment_index`` is the cursor
    of the hop currently holding the packet (-1 while at the source).
    """

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=30,
        name="DATA",
        function="Source-routed data packet",
        parameters="(SIP, DIP, seq, RR, payload)",
    )

    sip: IPv6Address
    dip: IPv6Address
    seq: int
    route: tuple[IPv6Address, ...]
    payload: bytes = b""
    segment_index: int = -1
    #: Origination timestamp (a real stack would carry this in an
    #: application header; used for end-to-end latency measurement).
    sent_at: float = 0.0
    hop_limit: int = 64

    def full_path(self) -> tuple[IPv6Address, ...]:
        """S, intermediates..., D."""
        return (self.sip,) + self.route + (self.dip,)

    def next_hop(self) -> IPv6Address:
        """The address this packet should be forwarded to next."""
        path = self.full_path()
        cursor = self.segment_index + 1  # position of current holder in path
        if cursor + 1 >= len(path):
            raise ValueError("packet already at destination")
        return path[cursor + 1]

    def advance(self) -> "DataPacket":
        """The copy held by the next hop."""
        return self.replace(segment_index=self.segment_index + 1,
                            hop_limit=self.hop_limit - 1)

    def _encode_fields(self, w: Writer) -> None:
        w.address(self.sip)
        w.address(self.dip)
        w.u64(self.seq)
        _encode_route(w, self.route)
        w.blob(self.payload)
        w.u16(self.segment_index & 0xFFFF)
        w.u64(int(self.sent_at * 1e9))  # nanosecond-resolution timestamp
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "DataPacket":
        sip = r.address()
        dip = r.address()
        seq = r.u64()
        route = _decode_route(r)
        payload = r.blob()
        seg = r.u16()
        if seg == 0xFFFF:
            seg = -1
        sent_at = r.u64() / 1e9
        return cls(sip=sip, dip=dip, seq=seq, route=route, payload=payload,
                   segment_index=seg, sent_at=sent_at, hop_limit=r.u8())


@dataclass(frozen=True)
class AckPacket(Message):
    """Signed end-to-end acknowledgement travelling the reverse route."""

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=31,
        name="ACK",
        function="End-to-end signed acknowledgement",
        parameters="(SIP, DIP, seq, [SIP, DIP, seq]DSK, DPK, Drn)",
    )

    sip: IPv6Address
    dip: IPv6Address
    seq: int
    route: tuple[IPv6Address, ...]
    signature: bytes
    public_key: PublicKey
    rn: int
    hop_limit: int = 64

    def _encode_fields(self, w: Writer) -> None:
        w.address(self.sip)
        w.address(self.dip)
        w.u64(self.seq)
        _encode_route(w, self.route)
        w.blob(self.signature)
        w.public_key(self.public_key)
        w.u64(self.rn)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "AckPacket":
        return cls(
            sip=r.address(),
            dip=r.address(),
            seq=r.u64(),
            route=_decode_route(r),
            signature=r.blob(),
            public_key=r.public_key(),
            rn=r.u64(),
            hop_limit=r.u8(),
        )
