"""Routing control messages: RREQ, RREP, CREP, RERR (Table 1, §3.3-3.4).

The distinguishing structure is the *secure route record* (SRR): each
intermediate node I appends an :class:`SRREntry`
``([I_IP, seq]_ISK, I_PK, I_rn)`` to the flooded RREQ, so the destination
can verify the identity of **every** hop -- the paper's improvement over
BSAR's endpoint-only verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.crypto.keys import PublicKey
from repro.ipv6.address import IPv6Address
from repro.messages.base import Message, MessageMeta, Reader, Writer


@dataclass(frozen=True)
class SRREntry:
    """One hop's identity proof inside the SRR.

    Fields map to the paper's ``([I_IP, seq]_ISK, I_PK, I_rn)``.
    """

    ip: IPv6Address
    signature: bytes
    public_key: PublicKey
    rn: int

    def encode(self, w: Writer) -> None:
        w.address(self.ip)
        w.blob(self.signature)
        w.public_key(self.public_key)
        w.u64(self.rn)

    @classmethod
    def decode(cls, r: Reader) -> "SRREntry":
        return cls(ip=r.address(), signature=r.blob(), public_key=r.public_key(), rn=r.u64())


def _encode_srr(w: Writer, srr: tuple[SRREntry, ...]) -> None:
    w.u16(len(srr))
    for entry in srr:
        entry.encode(w)


def _decode_srr(r: Reader) -> tuple[SRREntry, ...]:
    return tuple(SRREntry.decode(r) for _ in range(r.u16()))


def _encode_route(w: Writer, route: tuple[IPv6Address, ...]) -> None:
    w.u16(len(route))
    for hop in route:
        w.address(hop)


def _decode_route(r: Reader) -> tuple[IPv6Address, ...]:
    return tuple(r.address() for _ in range(r.u16()))


@dataclass(frozen=True)
class RREQ(Message):
    """Route REQuest: ``(SIP, DIP, seq, SRR, [SIP, seq]SSK, SPK, Srn)``.

    ``source_signature`` proves S initiated this discovery;
    ``source_public_key``/``source_rn`` are S's CGA parameters.
    """

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=20,
        name="RREQ",
        function="Route REQuest",
        parameters="(SIP, DIP, seq, SRR, [SIP, seq]SSK, SPK, Srn)",
    )

    sip: IPv6Address
    dip: IPv6Address
    seq: int
    srr: tuple[SRREntry, ...]
    source_signature: bytes
    source_public_key: PublicKey
    source_rn: int
    hop_limit: int = 64

    @property
    def route_ips(self) -> tuple[IPv6Address, ...]:
        """The plain RR extracted from the SRR (intermediate hop addresses)."""
        return tuple(e.ip for e in self.srr)

    def append_entry(self, entry: SRREntry) -> "RREQ":
        """Rebroadcast copy with this hop's identity proof appended."""
        return self.replace(srr=self.srr + (entry,), hop_limit=self.hop_limit - 1)

    def _encode_fields(self, w: Writer) -> None:
        w.address(self.sip)
        w.address(self.dip)
        w.u64(self.seq)
        _encode_srr(w, self.srr)
        w.blob(self.source_signature)
        w.public_key(self.source_public_key)
        w.u64(self.source_rn)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "RREQ":
        return cls(
            sip=r.address(),
            dip=r.address(),
            seq=r.u64(),
            srr=_decode_srr(r),
            source_signature=r.blob(),
            source_public_key=r.public_key(),
            source_rn=r.u64(),
            hop_limit=r.u8(),
        )


@dataclass(frozen=True)
class RREP(Message):
    """Route REPly: ``(SIP, DIP, [SIP, seq, RR]DSK, DPK, Drn)``.

    ``route`` is RR in the clear (needed for reverse-path forwarding);
    ``signature`` covers (SIP, seq, RR) under D's key, so tampering with
    the path en route back is detectable by S.
    """

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=21,
        name="RREP",
        function="Route REPly",
        parameters="(SIP, DIP, [SIP, seq, RR]DSK, DPK, Drn)",
    )

    sip: IPv6Address
    dip: IPv6Address
    seq: int
    route: tuple[IPv6Address, ...]
    signature: bytes
    public_key: PublicKey
    rn: int
    hop_limit: int = 64

    def _encode_fields(self, w: Writer) -> None:
        w.address(self.sip)
        w.address(self.dip)
        w.u64(self.seq)
        _encode_route(w, self.route)
        w.blob(self.signature)
        w.public_key(self.public_key)
        w.u64(self.rn)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "RREP":
        return cls(
            sip=r.address(),
            dip=r.address(),
            seq=r.u64(),
            route=_decode_route(r),
            signature=r.blob(),
            public_key=r.public_key(),
            rn=r.u64(),
            hop_limit=r.u8(),
        )


@dataclass(frozen=True)
class CREP(Message):
    """Cached route REPly (Table 1):

    ``(S'IP, SIP, DIP, RR(S'->S), [S'IP, seq', RR(S'->S)]SSK, SPK, Srn,
    [SIP, seq, RR(S->D)]DSK, DPK, Drn)``

    S (the cache holder) answers S' with two verifiable legs:

    * a *fresh* leg -- S' -> S -- signed by S now (``fresh_*`` fields,
      sequence ``fresh_seq`` = seq' initiated by S'), and
    * the *cached* leg -- S -> D -- the original destination signature S
      kept from its own discovery (``cached_*`` fields, the old ``seq``).
    """

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=22,
        name="CREP",
        function="Cached route REPly",
        parameters=(
            "(S'IP, SIP, DIP, RR(S'->S), [S'IP, seq', RR(S'->S)]SSK, SPK, Srn, "
            "[SIP, seq, RR(S->D)]DSK, DPK, Drn)"
        ),
    )

    sprime_ip: IPv6Address
    sip: IPv6Address
    dip: IPv6Address
    fresh_seq: int
    fresh_route: tuple[IPv6Address, ...]
    fresh_signature: bytes
    fresh_public_key: PublicKey
    fresh_rn: int
    cached_seq: int
    cached_route: tuple[IPv6Address, ...]
    cached_signature: bytes
    cached_public_key: PublicKey
    cached_rn: int
    hop_limit: int = 64

    def full_route(self) -> tuple[IPv6Address, ...]:
        """The spliced S' -> S -> D intermediate-hop list (S itself included)."""
        return self.fresh_route + (self.sip,) + self.cached_route

    def _encode_fields(self, w: Writer) -> None:
        w.address(self.sprime_ip)
        w.address(self.sip)
        w.address(self.dip)
        w.u64(self.fresh_seq)
        _encode_route(w, self.fresh_route)
        w.blob(self.fresh_signature)
        w.public_key(self.fresh_public_key)
        w.u64(self.fresh_rn)
        w.u64(self.cached_seq)
        _encode_route(w, self.cached_route)
        w.blob(self.cached_signature)
        w.public_key(self.cached_public_key)
        w.u64(self.cached_rn)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "CREP":
        return cls(
            sprime_ip=r.address(),
            sip=r.address(),
            dip=r.address(),
            fresh_seq=r.u64(),
            fresh_route=_decode_route(r),
            fresh_signature=r.blob(),
            fresh_public_key=r.public_key(),
            fresh_rn=r.u64(),
            cached_seq=r.u64(),
            cached_route=_decode_route(r),
            cached_signature=r.blob(),
            cached_public_key=r.public_key(),
            cached_rn=r.u64(),
            hop_limit=r.u8(),
        )


@dataclass(frozen=True)
class RERR(Message):
    """Route ERRor: ``(IIP, I'IP, [IIP, I'IP]ISK, IPK, Irn)``.

    Reporter I claims its link to next hop I' broke.  The signature +
    CGA parameters force I to expose its identity to the source --
    the hook the paper's credit mechanism uses to track RERR spammers.
    """

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=23,
        name="RERR",
        function="Route ERRor",
        parameters="(IIP, I'IP, [IIP, I'IP]ISK, IPK, Irn)",
    )

    reporter_ip: IPv6Address
    broken_next_hop: IPv6Address
    signature: bytes
    public_key: PublicKey
    rn: int
    #: The source the report is addressed to (needed for reverse routing).
    sip: IPv6Address = IPv6Address(0)
    #: Transport detail: the hops between the reporter and S (reporter's
    #: side first), i.e. the reverse of the data route's prefix.  The
    #: paper leaves RERR transport implicit; DSR sends it back along the
    #: source route, which requires carrying this list.  It is *not*
    #: signed -- tampering with it only misdelivers the report.
    return_route: tuple[IPv6Address, ...] = ()
    hop_limit: int = 64

    def _encode_fields(self, w: Writer) -> None:
        w.address(self.reporter_ip)
        w.address(self.broken_next_hop)
        w.blob(self.signature)
        w.public_key(self.public_key)
        w.u64(self.rn)
        w.address(self.sip)
        _encode_route(w, self.return_route)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "RERR":
        return cls(
            reporter_ip=r.address(),
            broken_next_hop=r.address(),
            signature=r.blob(),
            public_key=r.public_key(),
            rn=r.u64(),
            sip=r.address(),
            return_route=_decode_route(r),
            hop_limit=r.u8(),
        )
