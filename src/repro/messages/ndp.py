"""RFC 2461 Neighbor Discovery messages (NS/NA).

The paper's AREQ/AREP extend NS/NA to multiple hops (Section 2.2); the
one-hop originals are kept as the baseline DAD mechanism and carry the
optional 6DNAR "domain name" option (Section 2.4) so single-hop name
registration also works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.ipv6.address import IPv6Address
from repro.messages.base import Message, MessageMeta, Reader, Writer


@dataclass(frozen=True)
class NeighborSolicitation(Message):
    """NS: "is anyone using ``target``?" -- one-hop DAD probe.

    ``domain_name`` is the 6DNAR option; empty when the sender does not
    want a name registered.
    """

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=1,
        name="NS",
        function="Neighbor Solicitation (one-hop DAD probe)",
        parameters="(target, DN)",
    )

    target: IPv6Address
    domain_name: str = ""
    hop_limit: int = 1

    def _encode_fields(self, w: Writer) -> None:
        w.address(self.target)
        w.text(self.domain_name)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "NeighborSolicitation":
        return cls(target=r.address(), domain_name=r.text(), hop_limit=r.u8())


@dataclass(frozen=True)
class NeighborAdvertisement(Message):
    """NA: "that address (or name) is mine" -- one-hop DAD defence."""

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=2,
        name="NA",
        function="Neighbor Advertisement (address/name defence)",
        parameters="(target, DN, duplicate_name)",
    )

    target: IPv6Address
    domain_name: str = ""
    #: True when the conflict is on the domain name rather than the address.
    duplicate_name: bool = False
    hop_limit: int = 1

    def _encode_fields(self, w: Writer) -> None:
        w.address(self.target)
        w.text(self.domain_name)
        w.u8(1 if self.duplicate_name else 0)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "NeighborAdvertisement":
        return cls(
            target=r.address(),
            domain_name=r.text(),
            duplicate_name=bool(r.u8()),
            hop_limit=r.u8(),
        )
