"""DNS service messages (Section 3.2).

Name resolution is challenge/response: the client includes a random
``ch`` in its query and the server's signed answer covers ``(DN, IP,
ch)``, so replaying an old response for a name whose binding has since
changed is rejected.  The IP-change exchange follows the paper exactly:
DNS issues a challenge; the holder presents old IP, new IP, both random
modifiers, its public key, and ``[XIP, X'IP, ch]_XSK``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.crypto.keys import PublicKey
from repro.ipv6.address import IPv6Address
from repro.messages.base import Message, MessageMeta, Reader, Writer


def _encode_route(w: Writer, route: tuple[IPv6Address, ...]) -> None:
    w.u16(len(route))
    for hop in route:
        w.address(hop)


def _decode_route(r: Reader) -> tuple[IPv6Address, ...]:
    return tuple(r.address() for _ in range(r.u16()))


@dataclass(frozen=True)
class DNSQuery(Message):
    """Resolve ``domain_name``; ``ch`` is the client's anti-replay challenge."""

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=40,
        name="DNSQ",
        function="DNS name resolution query",
        parameters="(SIP, DN, ch)",
    )

    sip: IPv6Address
    domain_name: str
    ch: int
    hop_limit: int = 64

    def _encode_fields(self, w: Writer) -> None:
        w.address(self.sip)
        w.text(self.domain_name)
        w.u64(self.ch)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "DNSQuery":
        return cls(sip=r.address(), domain_name=r.text(), ch=r.u64(), hop_limit=r.u8())


@dataclass(frozen=True)
class DNSResponse(Message):
    """Signed answer: (DN, IP, ch) under the DNS server's key.

    ``found`` is False for NXDOMAIN (still signed, so an attacker cannot
    deny a name's existence by forging negatives).
    """

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=41,
        name="DNSR",
        function="DNS name resolution response",
        parameters="(DN, IP, found, [DN, IP, ch]NSK)",
    )

    domain_name: str
    ip: IPv6Address
    found: bool
    ch: int
    signature: bytes
    hop_limit: int = 64

    def _encode_fields(self, w: Writer) -> None:
        w.text(self.domain_name)
        w.address(self.ip)
        w.u8(1 if self.found else 0)
        w.u64(self.ch)
        w.blob(self.signature)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "DNSResponse":
        return cls(
            domain_name=r.text(),
            ip=r.address(),
            found=bool(r.u8()),
            ch=r.u64(),
            signature=r.blob(),
            hop_limit=r.u8(),
        )


@dataclass(frozen=True)
class DNSUpdateChallenge(Message):
    """DNS -> holder: "prove you own the binding" (carries the server's ch)."""

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=42,
        name="DNSUC",
        function="DNS IP-change challenge",
        parameters="(DN, ch)",
    )

    domain_name: str
    ch: int
    hop_limit: int = 64

    def _encode_fields(self, w: Writer) -> None:
        w.text(self.domain_name)
        w.u64(self.ch)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "DNSUpdateChallenge":
        return cls(domain_name=r.text(), ch=r.u64(), hop_limit=r.u8())


@dataclass(frozen=True)
class DNSUpdateRequest(Message):
    """Holder -> DNS: the authenticated IP change of Section 3.2.

    Presents ``XIP`` (old), ``X'IP`` (new), both random modifiers, the
    (unchanged) public key, and ``[XIP, X'IP, ch]_XSK``.
    """

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=43,
        name="DNSU",
        function="DNS authenticated IP change",
        parameters="(DN, XIP, X'IP, Xrn, X'rn, XPK, [XIP, X'IP, ch]XSK)",
    )

    domain_name: str
    old_ip: IPv6Address
    new_ip: IPv6Address
    old_rn: int
    new_rn: int
    public_key: PublicKey
    signature: bytes
    hop_limit: int = 64

    def _encode_fields(self, w: Writer) -> None:
        w.text(self.domain_name)
        w.address(self.old_ip)
        w.address(self.new_ip)
        w.u64(self.old_rn)
        w.u64(self.new_rn)
        w.public_key(self.public_key)
        w.blob(self.signature)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "DNSUpdateRequest":
        return cls(
            domain_name=r.text(),
            old_ip=r.address(),
            new_ip=r.address(),
            old_rn=r.u64(),
            new_rn=r.u64(),
            public_key=r.public_key(),
            signature=r.blob(),
            hop_limit=r.u8(),
        )


@dataclass(frozen=True)
class DNSUpdateReply(Message):
    """DNS -> holder: signed accept/reject of an IP change."""

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=44,
        name="DNSUR",
        function="DNS IP-change result",
        parameters="(DN, new IP, accepted, [DN, IP, ch]NSK)",
    )

    domain_name: str
    new_ip: IPv6Address
    accepted: bool
    ch: int
    signature: bytes
    hop_limit: int = 64

    def _encode_fields(self, w: Writer) -> None:
        w.text(self.domain_name)
        w.address(self.new_ip)
        w.u8(1 if self.accepted else 0)
        w.u64(self.ch)
        w.blob(self.signature)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "DNSUpdateReply":
        return cls(
            domain_name=r.text(),
            new_ip=r.address(),
            accepted=bool(r.u8()),
            ch=r.u64(),
            signature=r.blob(),
            hop_limit=r.u8(),
        )
