"""Protocol messages (Table 1) and their wire codec.

Every control message from Table 1 of the paper is a frozen dataclass:

====== ==================== ==========================================
Type   Function             Parameters (paper notation)
====== ==================== ==========================================
AREQ   Address REQuest      (SIP, seq, DN, ch, RR)
AREP   Address REPly        (SIP, RR, [SIP, ch]RSK, RPK, Rrn)
DREP   DNS server REPly     (SIP, RR, [DN, ch]NSK)
RREQ   Route REQuest        (SIP, DIP, seq, SRR, [SIP, seq]SSK, SPK, Srn)
RREP   Route REPly          (SIP, DIP, [SIP, seq, RR]DSK, DPK, Drn)
CREP   Cached route REPly   (S'IP, SIP, DIP, RR(S'->S), [S'...]S'SK, ...)
RERR   Route ERRor          (IIP, I'IP, [IIP, I'IP]ISK, IPK, Irn)
====== ==================== ==========================================

plus the RFC 2461 NS/NA pair (one-hop DAD baseline), DATA/ACK packets,
and the DNS query/response/update messages of Section 3.2.

Encodings are length-exact byte strings (:mod:`repro.messages.codec`),
so "routing overhead in bytes" in the benchmarks reflects real field
sizes.  The byte strings that get *signed* are canonicalised in
:mod:`repro.messages.signing`; both signer and verifier go through the
same functions, which is what makes forgery checks meaningful.
"""

from repro.messages.base import Message, MessageMeta
from repro.messages.ndp import NeighborSolicitation, NeighborAdvertisement
from repro.messages.bootstrap import AREQ, AREP, DREP
from repro.messages.routing import SRREntry, RREQ, RREP, CREP, RERR
from repro.messages.data import DataPacket, AckPacket
from repro.messages.dns import DNSQuery, DNSResponse, DNSUpdateChallenge, DNSUpdateRequest, DNSUpdateReply
from repro.messages.codec import encode_message, decode_message, wire_size

__all__ = [
    "Message",
    "MessageMeta",
    "NeighborSolicitation",
    "NeighborAdvertisement",
    "AREQ",
    "AREP",
    "DREP",
    "SRREntry",
    "RREQ",
    "RREP",
    "CREP",
    "RERR",
    "DataPacket",
    "AckPacket",
    "DNSQuery",
    "DNSResponse",
    "DNSUpdateChallenge",
    "DNSUpdateRequest",
    "DNSUpdateReply",
    "encode_message",
    "decode_message",
    "wire_size",
]
