"""Canonical byte encodings of everything that gets signed.

The paper writes constructions like ``[SIP, ch]_RSK``: a tuple of fields
"encrypted" (signed) under a private key.  Signer and verifier must agree
byte-for-byte on the encoding of that tuple; these functions are the
single source of truth for both sides.  Each payload starts with a
distinct domain-separation tag, so a signature over an AREP tuple can
never be replayed as, say, an SRR entry even if the field values happen
to coincide -- a cross-protocol replay the paper implicitly assumes away
and we enforce explicitly.
"""

from __future__ import annotations

from repro.ipv6.address import IPv6Address


def _u64(v: int) -> bytes:
    return v.to_bytes(8, "big")


def arep_payload(sip: IPv6Address, ch: int) -> bytes:
    """``[SIP, ch]_RSK`` -- AREP: the duplicate-holder answers S's challenge."""
    return b"AREP|" + sip.packed + _u64(ch)


def drep_payload(domain_name: str, ch: int) -> bytes:
    """``[DN, ch]_NSK`` -- DREP: the DNS server reports a name conflict."""
    return b"DREP|" + domain_name.encode("utf-8") + b"|" + _u64(ch)


def rreq_source_payload(sip: IPv6Address, seq: int) -> bytes:
    """``[SIP, seq]_SSK`` -- RREQ: the source's identity proof."""
    return b"RREQ-S|" + sip.packed + _u64(seq)


def srr_entry_payload(iip: IPv6Address, seq: int) -> bytes:
    """``[IIP, seq]_ISK`` -- the per-hop identity proof appended to the SRR.

    Binding ``seq`` (the source's per-RREQ sequence number) into each hop
    signature is what prevents splicing a hop proof from one discovery
    into another.
    """
    return b"SRR-I|" + iip.packed + _u64(seq)


def rrep_payload(sip: IPv6Address, seq: int, route: tuple[IPv6Address, ...]) -> bytes:
    """``[SIP, seq, RR]_DSK`` -- RREP: the destination signs the full route.

    Covering RR means no intermediate node can shorten/alter the path on
    the way back without invalidating D's signature.
    """
    out = b"RREP|" + sip.packed + _u64(seq) + len(route).to_bytes(2, "big")
    for hop in route:
        out += hop.packed
    return out


def crep_cached_leg_payload(sip: IPv6Address, seq: int, route: tuple[IPv6Address, ...]) -> bytes:
    """The cached ``[SIP, seq, RR(S->D)]_DSK`` leg inside a CREP.

    Identical structure to :func:`rrep_payload` -- it *is* the original
    RREP signature that S cached, re-presented verbatim to S'.
    """
    return rrep_payload(sip, seq, route)


def crep_fresh_leg_payload(sprime_ip: IPv6Address, seq: int, route: tuple[IPv6Address, ...]) -> bytes:
    """The fresh ``[S'IP, seq', RR(S'->S)]_SSK`` leg: S vouches for its path to S'."""
    return b"CREP-F|" + sprime_ip.packed + _u64(seq) + len(route).to_bytes(2, "big") + b"".join(
        hop.packed for hop in route
    )


def rerr_payload(iip: IPv6Address, next_ip: IPv6Address) -> bytes:
    """``[IIP, I'IP]_ISK`` -- RERR: reporter I proves it claims link I->I' broke."""
    return b"RERR|" + iip.packed + next_ip.packed


def dns_response_payload(domain_name: str, ip: IPv6Address, ch: int) -> bytes:
    """DNS answer signed by the server: binds (DN, IP) to the client's challenge."""
    return b"DNSR|" + domain_name.encode("utf-8") + b"|" + ip.packed + _u64(ch)


def dns_update_payload(old_ip: IPv6Address, new_ip: IPv6Address, ch: int) -> bytes:
    """``[XIP, X'IP, ch]_XSK`` -- Section 3.2's authenticated IP change."""
    return b"DNSU|" + old_ip.packed + new_ip.packed + _u64(ch)


def ack_payload(src: IPv6Address, dst: IPv6Address, seq: int) -> bytes:
    """End-to-end ACK signed by the destination; drives credit rewards.

    Not in Table 1 (the paper only says packets are "correctly
    acknowledged by D"); signing the ACK keeps a black hole from minting
    credit for itself by forging acknowledgements.
    """
    return b"ACK|" + src.packed + dst.packed + _u64(seq)
