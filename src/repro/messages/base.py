"""Message base class and binary field primitives.

A :class:`Message` is an immutable record; mutation patterns like
"append my identity to the route record and rebroadcast" produce new
objects (``dataclasses.replace`` under the hood), which prevents an
intermediate node from accidentally sharing state with queued copies of
the same flood.

:class:`Writer`/:class:`Reader` are tiny big-endian binary builders used
by the codec; keeping them here lets message modules define their own
``_encode_fields``/``_decode_fields`` without importing the codec
(avoiding a cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import ClassVar

from repro.crypto.backend import get_backend
from repro.crypto.keys import PublicKey
from repro.ipv6.address import IPv6Address


class CodecError(ValueError):
    """Raised on malformed wire data."""


@dataclass(frozen=True)
class MessageMeta:
    """Per-type metadata used by the codec registry and Table 1 printer."""

    type_id: int
    name: str
    function: str  # the "Function" column of Table 1
    parameters: str  # the "Parameters" column of Table 1, paper notation


@dataclass(frozen=True)
class Message:
    """Base class of every protocol message.

    Subclasses set ``META`` and implement ``_encode_fields``/
    ``_decode_fields``.  ``hop_limit`` is a simulator-level TTL shared by
    all messages (IPv6 hop limit); it is intentionally *not* covered by
    any signature, exactly as in real IP.
    """

    META: ClassVar[MessageMeta]

    def replace(self, **changes) -> "Message":
        """Functional update (fields are immutable).

        The new object starts with a cold wire cache: changed fields mean
        changed bytes, and :meth:`wire_bytes` re-encodes lazily.
        """
        return replace(self, **changes)

    # Wire cache ---------------------------------------------------------
    def wire_bytes(self) -> bytes:
        """This message's wire encoding, computed at most once.

        Messages are immutable wire objects, so the first encode (type id
        byte + fields, via the codec) is cached on the instance; every
        later consumer -- send-path size accounting, signing, tracing,
        flood re-forwarding of the same copy -- reuses the same bytes.
        The codec's ``encode_call_count()`` counts actual encodes, which
        is how benchmarks prove "encode once per distinct message".
        """
        cached = self.__dict__.get("_wire_cache")
        if cached is None:
            from repro.messages.codec import encode_message

            cached = encode_message(self)
            # Frozen dataclass: bypass the immutability guard for the memo
            # (not a field -- invisible to __eq__/__repr__/replace()).
            object.__setattr__(self, "_wire_cache", cached)
        return cached

    def wire_size(self) -> int:
        """Encoded size in bytes (cached via :meth:`wire_bytes`)."""
        return len(self.wire_bytes())

    def summary(self) -> str:
        """One-line human-readable form for traces."""
        parts = []
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, bytes):
                v = v.hex()[:12] + ".."
            elif isinstance(v, (list, tuple)) and len(repr(v)) > 40:
                v = f"<{len(v)} items>"
            parts.append(f"{f.name}={v}")
        return f"{self.META.name}({', '.join(parts)})"

    # Subclass API -------------------------------------------------------
    def _encode_fields(self, w: "Writer") -> None:
        raise NotImplementedError

    @classmethod
    def _decode_fields(cls, r: "Reader") -> "Message":
        raise NotImplementedError


class Writer:
    """Append-only big-endian binary builder."""

    __slots__ = ("_chunks",)

    def __init__(self):
        self._chunks: list[bytes] = []

    def u8(self, v: int) -> None:
        self._chunks.append(v.to_bytes(1, "big"))

    def u16(self, v: int) -> None:
        self._chunks.append(v.to_bytes(2, "big"))

    def u32(self, v: int) -> None:
        self._chunks.append(v.to_bytes(4, "big"))

    def u64(self, v: int) -> None:
        self._chunks.append(v.to_bytes(8, "big"))

    def raw(self, b: bytes) -> None:
        self._chunks.append(b)

    def blob(self, b: bytes) -> None:
        """Length-prefixed (u16) byte string."""
        if len(b) > 0xFFFF:
            raise CodecError(f"blob too long ({len(b)} bytes)")
        self.u16(len(b))
        self.raw(b)

    def text(self, s: str) -> None:
        """Length-prefixed UTF-8 string (domain names)."""
        self.blob(s.encode("utf-8"))

    def address(self, a: IPv6Address) -> None:
        self.raw(a.packed)

    def public_key(self, k: PublicKey) -> None:
        """Backend-name-tagged public key."""
        self.text(k.backend)
        self.blob(k.encode())

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class Reader:
    """Sequential big-endian binary reader with bounds checking."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise CodecError(
                f"truncated message: wanted {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self._take(2), "big")

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self._take(8), "big")

    def blob(self) -> bytes:
        return self._take(self.u16())

    def text(self) -> str:
        return self.blob().decode("utf-8")

    def address(self) -> IPv6Address:
        return IPv6Address(self._take(16))

    def public_key(self) -> PublicKey:
        backend_name = self.text()
        key_bytes = self.blob()
        return get_backend(backend_name).decode_public_key(key_bytes)

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)

    def expect_exhausted(self) -> None:
        if not self.exhausted:
            raise CodecError(
                f"{len(self._data) - self._pos} trailing bytes after message"
            )
