"""Bootstrap control messages: AREQ, AREP, DREP (Table 1, Section 3.1).

``AREQ(SIP, seq, DN, ch, RR)`` floods the MANET asking "does anyone hold
SIP (or DN)?".  A holder answers with ``AREP(SIP, RR, [SIP, ch]_RSK,
RPK, Rrn)`` unicast back along the reverse route record; the DNS server
answers a name conflict with ``DREP(SIP, RR, [DN, ch]_NSK)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from repro.crypto.keys import PublicKey
from repro.ipv6.address import IPv6Address
from repro.messages.base import Message, MessageMeta, Reader, Writer


def _encode_route(w: Writer, route: tuple[IPv6Address, ...]) -> None:
    w.u16(len(route))
    for hop in route:
        w.address(hop)


def _decode_route(r: Reader) -> tuple[IPv6Address, ...]:
    return tuple(r.address() for _ in range(r.u16()))


@dataclass(frozen=True)
class AREQ(Message):
    """Address REQuest -- flooded, extended-DAD probe.

    Parameters mirror Table 1: ``(SIP, seq, DN, ch, RR)``.

    * ``sip`` -- the tentative address S wants to claim.
    * ``seq`` -- S's sequence number; duplicate AREQs are not rebroadcast.
    * ``domain_name`` -- 6DNAR registration request; "" when not desired.
    * ``ch`` -- random challenge; a valid AREP/DREP must sign it, which is
      what kills replays of old replies.
    * ``route_record`` -- appended hop-by-hop, yields the reverse path for
      the unicast reply.
    """

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=10,
        name="AREQ",
        function="Address REQuest",
        parameters="(SIP, seq, DN, ch, RR)",
    )

    sip: IPv6Address
    seq: int
    domain_name: str
    ch: int
    route_record: tuple[IPv6Address, ...] = ()
    hop_limit: int = 64

    def append_hop(self, hop: IPv6Address) -> "AREQ":
        """The rebroadcast copy with ``hop`` appended to RR and TTL decremented."""
        return self.replace(
            route_record=self.route_record + (hop,),
            hop_limit=self.hop_limit - 1,
        )

    def _encode_fields(self, w: Writer) -> None:
        w.address(self.sip)
        w.u64(self.seq)
        w.text(self.domain_name)
        w.u64(self.ch)
        _encode_route(w, self.route_record)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "AREQ":
        return cls(
            sip=r.address(),
            seq=r.u64(),
            domain_name=r.text(),
            ch=r.u64(),
            route_record=_decode_route(r),
            hop_limit=r.u8(),
        )


@dataclass(frozen=True)
class AREP(Message):
    """Address REPly -- "SIP is mine", with proof.

    ``signature`` is ``[SIP, ch]_RSK`` (see
    :func:`repro.messages.signing.arep_payload`); ``public_key``/``rn``
    are R's CGA parameters so the receiver can check
    ``low64(SIP) == H(RPK, Rrn)``.
    """

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=11,
        name="AREP",
        function="Address REPly",
        parameters="(SIP, RR, [SIP, ch]RSK, RPK, Rrn)",
    )

    sip: IPv6Address
    route_record: tuple[IPv6Address, ...]
    signature: bytes
    public_key: PublicKey
    rn: int
    #: Challenge echoed in clear so the DNS (which issued no ch of its own
    #: for this AREQ) can look up the pending registration it guards.
    ch: int = 0
    #: True for the copy warning the DNS server.  The paper says R also
    #: "unicasts an AREP to DNS"; before routing exists there may be no
    #: route to the DNS, so the warning copy is flooded (relays dedup on
    #: (SIP, ch)).  Security is unaffected -- the warning is signed.
    to_dns: bool = False
    hop_limit: int = 64

    def _encode_fields(self, w: Writer) -> None:
        w.address(self.sip)
        _encode_route(w, self.route_record)
        w.blob(self.signature)
        w.public_key(self.public_key)
        w.u64(self.rn)
        w.u64(self.ch)
        w.u8(1 if self.to_dns else 0)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "AREP":
        return cls(
            sip=r.address(),
            route_record=_decode_route(r),
            signature=r.blob(),
            public_key=r.public_key(),
            rn=r.u64(),
            ch=r.u64(),
            to_dns=bool(r.u8()),
            hop_limit=r.u8(),
        )


@dataclass(frozen=True)
class DREP(Message):
    """DNS server REPly -- "that domain name is taken".

    ``signature`` is ``[DN, ch]_NSK``; the joiner verifies it with the
    DNS public key it was pre-configured with, the *only* pre-shared
    security state in the whole system.
    """

    META: ClassVar[MessageMeta] = MessageMeta(
        type_id=12,
        name="DREP",
        function="DNS server REPly",
        parameters="(SIP, RR, [DN, ch]NSK)",
    )

    sip: IPv6Address
    route_record: tuple[IPv6Address, ...]
    domain_name: str
    signature: bytes
    hop_limit: int = 64

    def _encode_fields(self, w: Writer) -> None:
        w.address(self.sip)
        _encode_route(w, self.route_record)
        w.text(self.domain_name)
        w.blob(self.signature)
        w.u8(self.hop_limit)

    @classmethod
    def _decode_fields(cls, r: Reader) -> "DREP":
        return cls(
            sip=r.address(),
            route_record=_decode_route(r),
            domain_name=r.text(),
            signature=r.blob(),
            hop_limit=r.u8(),
        )
